// Full preconditioned Krylov solve (the PCGPAK scenario): GMRES(30) with
// a parallel ILU(0) preconditioner on the SPE5 reservoir-style problem.
// Every phase that PCGPAK parallelizes is exercised: parallel numeric
// factorization, parallel triangular solves inside the preconditioner,
// and block-parallel SpMV / SAXPY / dot kernels.
//
// The preconditioners are built on one `rtl::Runtime`, whose structure-
// keyed plan cache is what makes the *second* setup with the same sparsity
// (the re-factorization scenario: new values, old structure) skip the
// inspectors entirely — watch the hit/miss counters below.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/runtime.hpp"
#include "runtime/timer.hpp"
#include "solver/ilu_preconditioner.hpp"
#include "solver/krylov.hpp"
#include "workload/problems.hpp"

int main() {
  using namespace rtl;
  const auto prob = make_spe5();
  const auto& a = prob.system.a;
  std::printf("problem %s: n = %d, nnz = %d\n", prob.name.c_str(), a.rows(),
              a.nnz());

  Runtime rt(16);
  for (const auto exec :
       {ExecutionPolicy::kPreScheduled, ExecutionPolicy::kSelfExecuting}) {
    ThreadTeam& team = rt.team();
    DoconsiderOptions opts;
    opts.execution = exec;

    WallTimer setup_timer;
    IluPreconditioner precond(rt, a, 0, opts);
    const double setup_ms = setup_timer.elapsed_ms();

    // Rebuild for the same structure: every inspector comes from the plan
    // cache this time, so the setup cost collapses to the symbolic phase.
    WallTimer resetup_timer;
    IluPreconditioner precond_rebuilt(rt, a, 0, opts);
    const double resetup_ms = resetup_timer.elapsed_ms();
    (void)precond_rebuilt;

    WallTimer factor_timer;
    precond.factor(team, a);
    const double factor_ms = factor_timer.elapsed_ms();

    std::vector<real_t> x(static_cast<std::size_t>(a.rows()), 0.0);
    KrylovOptions kopt;
    kopt.rtol = 1e-10;
    kopt.max_iterations = 400;

    WallTimer solve_timer;
    const auto res = gmres_solve(rt, a, prob.system.rhs, x, &precond, kopt);
    const double solve_ms = solve_timer.elapsed_ms();

    // True residual check.
    std::vector<real_t> r(x.size());
    a.spmv(x, r);
    double rn = 0.0;
    for (std::size_t i = 0; i < r.size(); ++i) {
      rn += (r[i] - prob.system.rhs[i]) * (r[i] - prob.system.rhs[i]);
    }

    std::printf(
        "\n%s executor:\n"
        "  inspector + symbolic factorization : %8.2f ms\n"
        "  rebuild, warm plan cache           : %8.2f ms\n"
        "  parallel numeric factorization     : %8.2f ms\n"
        "  GMRES(30) solve                    : %8.2f ms, %d iterations, "
        "%s\n"
        "  true residual                      : %.3e\n",
        exec == ExecutionPolicy::kPreScheduled ? "pre-scheduled"
                                               : "self-executing",
        setup_ms, resetup_ms, factor_ms, solve_ms, res.iterations,
        res.converged ? "converged" : "NOT converged", std::sqrt(rn));
  }

  const auto cc = rt.plan_cache_counters();
  std::printf(
      "\nplan cache: %llu hits, %llu misses, %zu cached plans\n",
      static_cast<unsigned long long>(cc.hits),
      static_cast<unsigned long long>(cc.misses), cc.entries);
  return 0;
}
