// Full preconditioned Krylov solve (the PCGPAK scenario): GMRES(30) with
// a parallel ILU(0) preconditioner on the SPE5 reservoir-style problem.
// Every phase that PCGPAK parallelizes is exercised: parallel numeric
// factorization, parallel triangular solves inside the preconditioner,
// and block-parallel SpMV / SAXPY / dot kernels.

#include <cmath>
#include <cstdio>
#include <vector>

#include "runtime/timer.hpp"
#include "solver/ilu_preconditioner.hpp"
#include "solver/krylov.hpp"
#include "workload/problems.hpp"

int main() {
  using namespace rtl;
  const auto prob = make_spe5();
  const auto& a = prob.system.a;
  std::printf("problem %s: n = %d, nnz = %d\n", prob.name.c_str(), a.rows(),
              a.nnz());

  for (const auto exec :
       {ExecutionPolicy::kPreScheduled, ExecutionPolicy::kSelfExecuting}) {
    ThreadTeam team(16);
    DoconsiderOptions opts;
    opts.execution = exec;

    WallTimer setup_timer;
    IluPreconditioner precond(team, a, 0, opts);
    const double setup_ms = setup_timer.elapsed_ms();

    WallTimer factor_timer;
    precond.factor(team, a);
    const double factor_ms = factor_timer.elapsed_ms();

    std::vector<real_t> x(static_cast<std::size_t>(a.rows()), 0.0);
    KrylovOptions kopt;
    kopt.rtol = 1e-10;
    kopt.max_iterations = 400;

    WallTimer solve_timer;
    const auto res = gmres_solve(team, a, prob.system.rhs, x, &precond, kopt);
    const double solve_ms = solve_timer.elapsed_ms();

    // True residual check.
    std::vector<real_t> r(x.size());
    a.spmv(x, r);
    double rn = 0.0;
    for (std::size_t i = 0; i < r.size(); ++i) {
      rn += (r[i] - prob.system.rhs[i]) * (r[i] - prob.system.rhs[i]);
    }

    std::printf(
        "\n%s executor:\n"
        "  inspector + symbolic factorization : %8.2f ms\n"
        "  parallel numeric factorization     : %8.2f ms\n"
        "  GMRES(30) solve                    : %8.2f ms, %d iterations, "
        "%s\n"
        "  true residual                      : %.3e\n",
        exec == ExecutionPolicy::kPreScheduled ? "pre-scheduled"
                                               : "self-executing",
        setup_ms, factor_ms, solve_ms, res.iterations,
        res.converged ? "converged" : "NOT converged", std::sqrt(rn));
  }
  return 0;
}
