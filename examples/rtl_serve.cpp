// The solve-service daemon: a SolveService behind a Unix-domain socket.
//
//   rtl_serve --socket PATH [--procs P] [--queue-cap N] [--max-batch K]
//             [--batch-window-us U] [--level K] [--metrics-json F]
//
// Serves concurrent rtl_client sessions multiplexed onto one shared
// Runtime: per-session matrix registries, bounded admission, and a
// batching aggregator that coalesces concurrent single-RHS requests on
// the same factorization into one batched sweep. RTL_PLAN_CACHE_DIR
// gives the service a persistent plan cache: a restarted server reports
// "inspector runs : 0" for structures it has served before.
//
// Runs until SIGINT/SIGTERM, then shuts down gracefully: new admissions
// are rejected with a typed error, in-flight solves drain and their
// replies are written, plan write-backs are already on disk (they are
// synchronous), and the final metrics snapshot is printed — and, with
// --metrics-json F, written as a bench-schema JSON document (see
// docs/BENCHMARKS.md).

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "report.hpp"  // bench/ JSON reporting (rtl_bench_common)
#include "service/server.hpp"
#include "service/solve_service.hpp"

namespace {

using namespace rtl;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--procs P] [--queue-cap N]\n"
               "          [--max-batch K] [--batch-window-us U]\n"
               "          [--metrics-json F]\n"
               "Serves solve requests over the Unix-domain socket at PATH\n"
               "until SIGINT/SIGTERM. RTL_PLAN_CACHE_DIR enables the\n"
               "persistent plan cache (warm restarts skip the inspector).\n",
               argv0);
  return 2;
}

// Self-pipe: the signal handler does the only async-signal-safe thing
// (write one byte); main blocks reading the pipe.
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

void print_metrics(const ServiceMetrics& m) {
  std::printf("rtl_serve: shutdown metrics\n");
  std::printf("  sessions       : %llu opened, %llu closed\n",
              static_cast<unsigned long long>(m.sessions_opened),
              static_cast<unsigned long long>(m.sessions_closed));
  std::printf("  admitted       : %llu (%llu rejected, peak depth %llu/%llu)\n",
              static_cast<unsigned long long>(m.admitted),
              static_cast<unsigned long long>(m.rejected),
              static_cast<unsigned long long>(m.queue_depth_peak),
              static_cast<unsigned long long>(m.queue_capacity));
  std::printf("  completed      : %llu (%llu errors)\n",
              static_cast<unsigned long long>(m.completed),
              static_cast<unsigned long long>(m.request_errors));
  std::printf("  batches        : %llu (%llu multi-request)\n",
              static_cast<unsigned long long>(m.batches),
              static_cast<unsigned long long>(m.multi_request_batches()));
  std::printf("  batch widths   :");
  static const char* kBucketNames[kBatchWidthBuckets] = {
      "1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", ">64"};
  for (int b = 0; b < kBatchWidthBuckets; ++b) {
    if (m.batch_width_hist[b] > 0) {
      std::printf(" [%s]=%llu", kBucketNames[b],
                  static_cast<unsigned long long>(m.batch_width_hist[b]));
    }
  }
  std::printf("\n");
  std::printf("  solve latency  : p50 %.3f ms, p99 %.3f ms (%llu samples)\n",
              m.solve_latency.percentile_ms(50.0),
              m.solve_latency.percentile_ms(99.0),
              static_cast<unsigned long long>(m.solve_latency.total()));
  std::printf("  plan cache     : %llu hits, %llu misses, disk %llu/%llu\n",
              static_cast<unsigned long long>(m.cache.hits),
              static_cast<unsigned long long>(m.cache.misses),
              static_cast<unsigned long long>(m.cache.disk_hits),
              static_cast<unsigned long long>(m.cache.disk_writes));
  std::printf("  inspector runs : %llu\n",
              static_cast<unsigned long long>(m.inspector_runs()));
  std::printf("  team size      : %llu\n",
              static_cast<unsigned long long>(m.team_size));
}

void write_metrics_json(const ServiceMetrics& m, const std::string& path) {
  // Reporter writes to $RTL_BENCH_JSON; point it at the requested path.
  ::setenv("RTL_BENCH_JSON", path.c_str(), 1);
  bench::Reporter report("rtl_serve");
  report.add_scalar("service", "admitted", static_cast<double>(m.admitted),
                    "count");
  report.add_scalar("service", "rejected", static_cast<double>(m.rejected),
                    "count");
  report.add_scalar("service", "queue_depth_peak",
                    static_cast<double>(m.queue_depth_peak), "count");
  report.add_scalar("service", "completed", static_cast<double>(m.completed),
                    "count");
  report.add_scalar("service", "request_errors",
                    static_cast<double>(m.request_errors), "count");
  report.add_scalar("service", "sessions_opened",
                    static_cast<double>(m.sessions_opened), "count");
  report.add_scalar("service", "batches", static_cast<double>(m.batches),
                    "count");
  report.add_scalar("service", "multi_request_batches",
                    static_cast<double>(m.multi_request_batches()), "count");
  for (int b = 0; b < kBatchWidthBuckets; ++b) {
    report.add_scalar("service", "batch_width_bucket_" + std::to_string(b),
                      static_cast<double>(m.batch_width_hist[b]), "count");
  }
  report.add_scalar("service", "solve_p50",
                    m.solve_latency.percentile_ms(50.0), "ms");
  report.add_scalar("service", "solve_p99",
                    m.solve_latency.percentile_ms(99.0), "ms");
  report.add_scalar("service", "inspector_runs",
                    static_cast<double>(m.inspector_runs()), "count");
  report.add_scalar("service", "team_size", static_cast<double>(m.team_size),
                    "count");
  report.add_plan_cache(m.cache);
  if (report.flush()) {
    std::printf("rtl_serve: metrics JSON written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "rtl_serve: failed to write metrics JSON to %s\n",
                 path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string metrics_json;
  ServiceConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--socket") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      socket_path = v;
    } else if (arg == "--procs") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      config.team_size = std::atoi(v);
    } else if (arg == "--queue-cap") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      config.queue_capacity = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--max-batch") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      config.max_batch = std::atoi(v);
    } else if (arg == "--batch-window-us") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      config.batch_window = std::chrono::microseconds(std::atol(v));
    } else if (arg == "--metrics-json") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      metrics_json = v;
    } else {
      return usage(argv[0]);
    }
  }
  if (socket_path.empty()) return usage(argv[0]);

  if (::pipe(g_signal_pipe) != 0) {
    std::perror("rtl_serve: pipe");
    return 1;
  }
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  try {
    SolveService service(config);
    ServiceServer server(service, socket_path);
    std::printf("rtl_serve: listening on %s (team %d, queue %zu, "
                "max batch %d, window %lld us)\n",
                socket_path.c_str(), service.runtime().size(),
                service.config().queue_capacity,
                static_cast<int>(service.config().max_batch),
                static_cast<long long>(service.config().batch_window.count()));
    if (!service.config().plan_cache_dir.empty()) {
      std::printf("rtl_serve: plan cache dir %s\n",
                  service.config().plan_cache_dir.c_str());
    }
    std::fflush(stdout);

    char byte = 0;
    while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    std::printf("rtl_serve: signal received, draining\n");
    std::fflush(stdout);

    server.stop();
    const ServiceMetrics metrics = service.metrics();
    print_metrics(metrics);
    if (!metrics_json.empty()) write_metrics_json(metrics, metrics_json);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rtl_serve: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
