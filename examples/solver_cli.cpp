// Command-line solver driver: the executable a downstream user runs on
// their own system.
//
//   solver_cli [--matrix FILE.mtx | --problem NAME] [--procs P]
//              [--exec self|pre|doacross|selfsched|windowed]
//              [--window W] [--sched global|local]
//              [--level K] [--rtol R] [--maxit N] [--rhs K]
//              [--reorder none|rcm|wavefront]
//              [--save-plan F] [--load-plan F]
//
// Reads a Matrix Market file (or generates a named Appendix I problem),
// builds the ILU(K) preconditioner with the chosen inspector/executor
// configuration, runs GMRES(30), and reports timings, iteration counts
// and the inspector statistics. With --rhs K > 1, K right-hand sides are
// solved through the multi-RHS driver: the inspector, the factorization
// and the bound solve kernels are paid once and amortized over all K
// solves (per-rhs setup and solve times are reported).
//
// A preconditioned solve uses three plans (numeric factorization, forward
// solve, backward solve), so --save-plan F writes a three-file bundle —
// F (lower/forward), F.upper, F.factor — in the core/plan_io binary
// format, and --load-plan F adopts the same bundle into the Runtime's
// plan cache before setup, skipping all three inspector runs when the
// structures and options match ("inspector runs : 0" in the plan cache
// line). RTL_PLAN_CACHE_DIR offers the same warm start implicitly,
// keyed by structure fingerprint.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/plan_io.hpp"
#include "core/runtime.hpp"
#include "graph/wavefront.hpp"
#include "kernel/batch.hpp"
#include "runtime/timer.hpp"
#include "solver/ilu_preconditioner.hpp"
#include "solver/krylov.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/reorder.hpp"
#include "sparse/triangular.hpp"
#include "workload/problems.hpp"

namespace {

using namespace rtl;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--matrix FILE.mtx | --problem NAME] [--procs P]\n"
      "          [--exec self|pre|doacross|selfsched|windowed|pipelined]\n"
      "          [--window W] [--panel W] [--sched global|local]\n"
      "          [--level K] [--rtol R] [--maxit N] [--rhs K]\n"
      "          [--reorder none|rcm|wavefront]\n"
      "          [--save-plan F] [--load-plan F]\n"
      "NAME: spe1..spe5, 5pt, 9pt, 7pt, l5pt, l9pt, l7pt\n"
      "--reorder applies a symmetric permutation before factoring: rcm\n"
      "(bandwidth-reducing) or wavefront (level-set order); before/after\n"
      "bandwidth and forward-solve wavefront counts are printed.\n"
      "--save-plan writes the three solve plans (forward, backward,\n"
      "factorization) to F, F.upper, F.factor; --load-plan adopts the\n"
      "same bundle so matching structures skip the inspector entirely.\n",
      argv0);
  return 2;
}

LinearSystem named_problem(const std::string& name) {
  if (name == "spe1") return make_spe1().system;
  if (name == "spe2") return make_spe2().system;
  if (name == "spe3") return make_spe3().system;
  if (name == "spe4") return make_spe4().system;
  if (name == "spe5") return make_spe5().system;
  if (name == "5pt") return make_5pt().system;
  if (name == "9pt") return make_9pt().system;
  if (name == "7pt") return make_7pt().system;
  if (name == "l5pt") return make_l5pt().system;
  if (name == "l9pt") return make_l9pt().system;
  if (name == "l7pt") return make_l7pt().system;
  throw std::runtime_error("unknown problem name: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  std::string matrix_path;
  std::string problem = "spe5";
  int procs = 16;
  int level = 0;
  int nrhs = 1;
  std::string reorder = "none";
  std::string save_plan_path;
  std::string load_plan_path;
  DoconsiderOptions opts;
  KrylovOptions kopt;
  kopt.rtol = 1e-8;
  kopt.max_iterations = 500;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--matrix") {
      matrix_path = next();
    } else if (arg == "--problem") {
      problem = next();
    } else if (arg == "--procs") {
      procs = std::atoi(next());
    } else if (arg == "--level") {
      level = std::atoi(next());
    } else if (arg == "--rtol") {
      kopt.rtol = std::atof(next());
    } else if (arg == "--maxit") {
      kopt.max_iterations = std::atoi(next());
    } else if (arg == "--rhs") {
      nrhs = std::atoi(next());
      if (nrhs < 1) return usage(argv[0]);
    } else if (arg == "--exec") {
      const std::string v = next();
      if (v == "self") {
        opts.execution = ExecutionPolicy::kSelfExecuting;
      } else if (v == "pre") {
        opts.execution = ExecutionPolicy::kPreScheduled;
      } else if (v == "doacross") {
        opts.execution = ExecutionPolicy::kDoAcross;
      } else if (v == "selfsched") {
        opts.execution = ExecutionPolicy::kSelfScheduled;
      } else if (v == "windowed") {
        opts.execution = ExecutionPolicy::kWindowed;
      } else if (v == "pipelined") {
        opts.execution = ExecutionPolicy::kPipelined;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--window") {
      opts.window = std::atoi(next());
      if (opts.window < 1) return usage(argv[0]);
    } else if (arg == "--panel") {
      opts.panel = std::atoi(next());
      if (opts.panel < 1) return usage(argv[0]);
    } else if (arg == "--reorder") {
      reorder = next();
      if (reorder != "none" && reorder != "rcm" && reorder != "wavefront") {
        return usage(argv[0]);
      }
    } else if (arg == "--save-plan") {
      save_plan_path = next();
    } else if (arg == "--load-plan") {
      load_plan_path = next();
    } else if (arg == "--sched") {
      const std::string v = next();
      if (v == "global") {
        opts.scheduling = SchedulingPolicy::kGlobal;
      } else if (v == "local") {
        opts.scheduling = SchedulingPolicy::kLocalWrapped;
      } else {
        return usage(argv[0]);
      }
    } else {
      return usage(argv[0]);
    }
  }
  if (procs < 1) return usage(argv[0]);

  try {
    LinearSystem sys;
    if (!matrix_path.empty()) {
      sys.a = read_matrix_market_file(matrix_path);
      if (sys.a.rows() != sys.a.cols()) {
        std::fprintf(stderr, "matrix must be square\n");
        return 1;
      }
      // rhs = A * ones: a solvable system with known solution.
      std::vector<real_t> ones(static_cast<std::size_t>(sys.a.rows()), 1.0);
      sys.rhs.resize(ones.size());
      sys.a.spmv(ones, sys.rhs);
      std::printf("matrix   : %s\n", matrix_path.c_str());
    } else {
      sys = named_problem(problem);
      std::printf("problem  : %s\n", problem.c_str());
    }
    std::printf("n        : %d, nnz: %d\n", sys.a.rows(), sys.a.nnz());

    if (reorder != "none") {
      // Reordering changes the available parallelism (§3 related work):
      // RCM shrinks the bandwidth, the wavefront order makes level sets
      // contiguous. Print both structure metrics before and after so the
      // effect on the schedules below is attributable.
      const auto forward_waves = [](const CsrMatrix& a) {
        return compute_wavefronts(lower_solve_dependences(a.strict_lower()))
            .num_waves;
      };
      const index_t bw_before = bandwidth(sys.a);
      const index_t waves_before = forward_waves(sys.a);
      const Permutation perm = reorder == "rcm"
                                   ? reverse_cuthill_mckee(sys.a)
                                   : wavefront_order(sys.a);
      sys.a = permute_symmetric(sys.a, perm);
      // Row perm[k] of A becomes row k, so the rhs follows the same map.
      std::vector<real_t> rhs(sys.rhs.size());
      for (std::size_t i = 0; i < rhs.size(); ++i) {
        rhs[i] = sys.rhs[static_cast<std::size_t>(perm.perm[i])];
      }
      sys.rhs = std::move(rhs);
      std::printf(
          "reorder  : %s, bandwidth %d -> %d, forward waves %d -> %d\n",
          reorder.c_str(), bw_before, bandwidth(sys.a), waves_before,
          forward_waves(sys.a));
    }

    Runtime rt(procs);
    ThreadTeam& team = rt.team();
    if (!load_plan_path.empty()) {
      // Warm start: seed the plan cache with the saved bundle before any
      // inspector could run. Mismatched bundles (different structure or
      // options) simply never hit; a wrong processor count is an error.
      rt.adopt_plan(load_plan_file(load_plan_path));
      rt.adopt_plan(load_plan_file(load_plan_path + ".upper"));
      rt.adopt_plan(load_plan_file(load_plan_path + ".factor"));
      std::printf("plans    : adopted bundle %s{,.upper,.factor}\n",
                  load_plan_path.c_str());
    }
    WallTimer inspect_timer;
    IluPreconditioner precond(rt, sys.a, level, opts);
    const double inspect_ms = inspect_timer.elapsed_ms();
    WallTimer factor_timer;
    precond.factor(team, sys.a);
    const double factor_ms = factor_timer.elapsed_ms();

    const auto& solver = precond.triangular_solver();
    if (!save_plan_path.empty()) {
      save_plan_file(solver.lower_plan(), save_plan_path);
      save_plan_file(solver.upper_plan(), save_plan_path + ".upper");
      save_plan_file(precond.factor_plan(), save_plan_path + ".factor");
      std::printf("plans    : saved bundle %s{,.upper,.factor}\n",
                  save_plan_path.c_str());
    }
    std::printf("waves    : %d (forward solve), %d (backward solve)\n",
                solver.lower_plan().wavefronts().num_waves,
                solver.upper_plan().wavefronts().num_waves);
    std::printf("inspector: %.2f ms, numeric factorization: %.2f ms\n",
                inspect_ms, factor_ms);
    const auto cc = rt.plan_cache_counters();
    std::printf(
        "plan cache: %llu hit(s), disk %llu/%llu/%llu/%llu "
        "(hit/miss/write/reject), inspector runs : %llu\n",
        static_cast<unsigned long long>(cc.hits),
        static_cast<unsigned long long>(cc.disk_hits),
        static_cast<unsigned long long>(cc.disk_misses),
        static_cast<unsigned long long>(cc.disk_writes),
        static_cast<unsigned long long>(cc.disk_rejects),
        static_cast<unsigned long long>(cc.misses));

    if (nrhs == 1) {
      std::vector<real_t> x(static_cast<std::size_t>(sys.a.rows()), 0.0);
      WallTimer solve_timer;
      const auto res = gmres_solve(team, sys.a, sys.rhs, x, &precond, kopt);
      const double solve_ms = solve_timer.elapsed_ms();

      std::vector<real_t> r(x.size());
      sys.a.spmv(x, r);
      double rn = 0.0, bn = 0.0;
      for (std::size_t i = 0; i < r.size(); ++i) {
        rn += (r[i] - sys.rhs[i]) * (r[i] - sys.rhs[i]);
        bn += sys.rhs[i] * sys.rhs[i];
      }
      std::printf("solve    : %.2f ms, %d iterations, %s\n", solve_ms,
                  res.iterations,
                  res.converged ? "converged" : "NOT converged");
      std::printf("residual : %.3e (relative)\n",
                  std::sqrt(rn) / (bn > 0 ? std::sqrt(bn) : 1.0));
      return res.converged ? 0 : 1;
    }

    // Multi-RHS: the inspector + factorization above are shared by all
    // K solves; each column gets its own Krylov iteration. Column j's
    // right-hand side is A * v_j for a deterministic family of vectors
    // v_j, so every system has a known solution.
    const index_t n = sys.a.rows();
    const index_t k = static_cast<index_t>(nrhs);
    BatchBuffer b(n, k), x(n, k);
    std::vector<real_t> vj(static_cast<std::size_t>(n));
    std::vector<real_t> col(static_cast<std::size_t>(n));
    for (index_t j = 0; j < k; ++j) {
      for (index_t i = 0; i < n; ++i) {
        vj[static_cast<std::size_t>(i)] =
            1.0 + 0.5 * static_cast<real_t>((i + j) % 7);
      }
      sys.a.spmv(vj, col);
      b.set_column(j, col);
      std::fill(vj.begin(), vj.end(), 0.0);
      x.set_column(j, vj);
    }
    WallTimer solve_timer;
    const auto results =
        gmres_solve(team, sys.a, b.view(), x.view(), &precond, kopt);
    const double solve_ms = solve_timer.elapsed_ms();

    int converged = 0, total_iters = 0;
    for (const auto& res : results) {
      if (res.converged) ++converged;
      total_iters += res.iterations;
    }
    std::printf(
        "solve    : %d rhs, %.2f ms total (%.2f ms/rhs), %d iterations "
        "total, %d/%d converged\n",
        nrhs, solve_ms, solve_ms / static_cast<double>(nrhs), total_iters,
        converged, nrhs);
    std::printf(
        "amortized: inspector %.2f ms + factorization %.2f ms paid once "
        "across %d solves (%.2f ms/rhs)\n",
        inspect_ms, factor_ms, nrhs,
        (inspect_ms + factor_ms) / static_cast<double>(nrhs));
    return converged == nrhs ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
