// Parallel sparse triangular solve — the paper's flagship workload.
//
// Builds the 5-PT test problem (63x63 five-point operator), computes its
// ILU(0) factors, and compares the sequential forward/backward solve
// against the pre-scheduled and self-executing parallel executors.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/runtime.hpp"
#include "runtime/timer.hpp"
#include "solver/parallel_triangular.hpp"
#include "sparse/ilu.hpp"
#include "sparse/triangular.hpp"
#include "workload/problems.hpp"

int main() {
  using namespace rtl;
  const auto prob = make_5pt();
  const auto& a = prob.system.a;
  const index_t n = a.rows();

  IluFactorization ilu(a, 0);
  ilu.factor(a);

  std::vector<real_t> tmp(static_cast<std::size_t>(n)),
      y_seq(static_cast<std::size_t>(n)), y_par(static_cast<std::size_t>(n));

  const double seq_ms = min_time_ms(5, [&] {
    solve_lower_unit(ilu.lower(), prob.system.rhs, tmp);
    solve_upper(ilu.upper(), tmp, y_seq);
  });

  std::printf("%s: n = %d, nnz(L)+nnz(U) = %d\n", prob.name.c_str(), n,
              ilu.lower().nnz() + ilu.upper().nnz());
  std::printf("sequential solve: %.3f ms\n\n", seq_ms);
  std::printf("%8s %16s %16s %10s\n", "procs", "pre-sched (ms)",
              "self-exec (ms)", "max err");

  for (const int p : {2, 4, 8, 16}) {
    Runtime rt(p);
    ThreadTeam& team = rt.team();
    DoconsiderOptions pre_opts;
    pre_opts.execution = ExecutionPolicy::kPreScheduled;
    ParallelTriangularSolver pre(rt, ilu, pre_opts);
    DoconsiderOptions self_opts;
    self_opts.execution = ExecutionPolicy::kSelfExecuting;
    ParallelTriangularSolver self(rt, ilu, self_opts);

    const double pre_ms = min_time_ms(
        5, [&] { pre.solve(team, prob.system.rhs, tmp, y_par); });
    const double self_ms = min_time_ms(
        5, [&] { self.solve(team, prob.system.rhs, tmp, y_par); });

    double err = 0.0;
    for (index_t i = 0; i < n; ++i) {
      err = std::max(err, std::abs(y_par[static_cast<std::size_t>(i)] -
                                   y_seq[static_cast<std::size_t>(i)]));
    }
    std::printf("%8d %16.3f %16.3f %10.2e\n", p, pre_ms, self_ms, err);
  }
  return 0;
}
