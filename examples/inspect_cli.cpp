// Inspector CLI: analyze the run-time parallelism of a sparse system
// without solving it.
//
//   inspect_cli [--matrix FILE.mtx | --problem NAME] [--procs P]
//               [--level K] [--reorder natural|rcm|wavefront]
//               [--save-plan F] [--load-plan F]
//
// Prints the dependence-graph statistics of the ILU(K) forward solve
// (wavefront count, width distribution, critical path), the symbolic
// efficiencies of the four scheduling/execution combinations on P
// processors (the paper's Figure 1 matrix), the inspector costs, and the
// plan fingerprint plus Runtime plan-cache counters (one cold and one
// warm `plan_for`, so cache behavior is observable from the shell).
//
// --save-plan F serializes the full solve bundle (forward plan to F,
// backward to F.upper, numeric-factorization to F.factor, default
// options) in the core/plan_io binary format — the producer half of
// `solver_cli --load-plan F`. --load-plan F instead loads F, prints the
// stored artifact's statistics, and verifies its structure fingerprint
// against the current matrix's forward-solve graph (exit 1 on mismatch),
// making it a shell-scriptable plan validity check.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "core/plan_io.hpp"
#include "core/runtime.hpp"
#include "graph/wavefront.hpp"
#include "runtime/timer.hpp"
#include "sparse/ilu.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/reorder.hpp"
#include "sparse/triangular.hpp"
#include "workload/problems.hpp"

namespace {

using namespace rtl;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--matrix FILE.mtx | --problem NAME] [--procs P]\n"
               "          [--level K] [--reorder natural|rcm|wavefront]\n"
               "          [--save-plan F] [--load-plan F]\n",
               argv0);
  return 2;
}

CsrMatrix named_matrix(const std::string& name) {
  if (name == "spe1") return make_spe1().system.a;
  if (name == "spe2") return make_spe2().system.a;
  if (name == "spe3") return make_spe3().system.a;
  if (name == "spe4") return make_spe4().system.a;
  if (name == "spe5") return make_spe5().system.a;
  if (name == "5pt") return make_5pt().system.a;
  if (name == "9pt") return make_9pt().system.a;
  if (name == "7pt") return make_7pt().system.a;
  throw std::runtime_error("unknown problem name: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  std::string matrix_path;
  std::string problem = "spe5";
  std::string reorder = "natural";
  std::string save_plan_path;
  std::string load_plan_path;
  int procs = 16;
  int level = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) std::exit(usage(argv[0]));
      return argv[++i];
    };
    if (arg == "--matrix") {
      matrix_path = next();
    } else if (arg == "--problem") {
      problem = next();
    } else if (arg == "--procs") {
      procs = std::atoi(next());
    } else if (arg == "--level") {
      level = std::atoi(next());
    } else if (arg == "--reorder") {
      reorder = next();
    } else if (arg == "--save-plan") {
      save_plan_path = next();
    } else if (arg == "--load-plan") {
      load_plan_path = next();
    } else {
      return usage(argv[0]);
    }
  }
  if (procs < 1) return usage(argv[0]);

  try {
    CsrMatrix a = matrix_path.empty() ? named_matrix(problem)
                                      : read_matrix_market_file(matrix_path);
    if (a.rows() != a.cols()) {
      std::fprintf(stderr, "matrix must be square\n");
      return 1;
    }
    if (reorder == "rcm") {
      a = permute_symmetric(a, reverse_cuthill_mckee(a));
    } else if (reorder == "wavefront") {
      a = permute_symmetric(a, wavefront_order(a));
    } else if (reorder != "natural") {
      return usage(argv[0]);
    }

    std::printf("matrix     : %s (%s order)\n",
                matrix_path.empty() ? problem.c_str() : matrix_path.c_str(),
                reorder.c_str());
    std::printf("n          : %d, nnz: %d, bandwidth: %d\n", a.rows(),
                a.nnz(), bandwidth(a));

    WallTimer symbolic_timer;
    IluFactorization ilu(a, level);
    std::printf("ILU(%d)     : symbolic %.2f ms, nnz(L)+nnz(U) = %d\n",
                level, symbolic_timer.elapsed_ms(),
                ilu.lower().nnz() + ilu.upper().nnz());

    const auto g = lower_solve_dependences(ilu.lower());
    WallTimer sort_timer;
    const auto wf = compute_wavefronts(g);
    const double sort_ms = sort_timer.elapsed_ms();

    index_t min_w = a.rows(), max_w = 0;
    for (index_t w = 0; w < wf.num_waves; ++w) {
      min_w = std::min(min_w, wf.wave_size(w));
      max_w = std::max(max_w, wf.wave_size(w));
    }
    std::printf(
        "wavefronts : %d (sort %.2f ms); width min/avg/max = %d / %.1f / "
        "%d\n",
        wf.num_waves, sort_ms, min_w,
        static_cast<double>(a.rows()) / std::max<index_t>(1, wf.num_waves),
        max_w);
    std::printf("critical   : %.1f%% of rows lie on the longest chain axis\n",
                100.0 * static_cast<double>(wf.num_waves) /
                    static_cast<double>(std::max<index_t>(1, a.rows())));

    // Figure 1's 2x2 space, evaluated symbolically for this matrix.
    const auto work = row_substitution_work(g);
    const auto sg = global_schedule(wf, procs);
    const auto sl = local_schedule(wf, wrapped_partition(g.size(), procs));
    std::printf("\nsymbolic efficiency on %d processors (Figure 1 grid):\n",
                procs);
    std::printf("  %-22s %-12s %-12s\n", "", "pre-sched", "self-exec");
    std::printf("  %-22s %-12.3f %-12.3f\n", "global scheduling",
                estimate_prescheduled(sg, work).efficiency,
                estimate_self_executing(sg, g, work).efficiency);
    std::printf("  %-22s %-12.3f %-12.3f\n", "local (striped)",
                estimate_prescheduled(sl, work).efficiency,
                estimate_self_executing(sl, g, work).efficiency);
    std::printf("  %-22s %-12s %-12.3f\n", "doacross (baseline)", "-",
                estimate_doacross(g.size(), procs, g, work).efficiency);

    // Plan/Runtime v2: structure fingerprint + cache behavior. The first
    // plan_for pays the inspector (miss); the second, with an identical
    // structure, returns the cached artifact (hit, inspector skipped).
    Runtime rt(procs);
    const auto cold = rt.plan_for(DependenceGraph(g));
    const auto warm = rt.plan_for(DependenceGraph(g));
    const auto cc = rt.plan_cache_counters();
    std::printf("\nplan fingerprint : %016llx (%d procs, %s)\n",
                static_cast<unsigned long long>(cold->fingerprint()), procs,
                cold.get() == warm.get() ? "warm plan_for reused it"
                                         : "UNEXPECTED rebuild");
    std::printf(
        "plan cache       : %llu hit(s), %llu miss(es), %llu eviction(s), "
        "%zu/%zu cached plan(s)\n",
        static_cast<unsigned long long>(cc.hits),
        static_cast<unsigned long long>(cc.misses),
        static_cast<unsigned long long>(cc.evictions), cc.entries,
        rt.plan_cache_capacity());
    std::printf(
        "disk tier        : %llu hit(s), %llu miss(es), %llu write(s), "
        "%llu reject(s)%s%s\n",
        static_cast<unsigned long long>(cc.disk_hits),
        static_cast<unsigned long long>(cc.disk_misses),
        static_cast<unsigned long long>(cc.disk_writes),
        static_cast<unsigned long long>(cc.disk_rejects),
        rt.plan_cache_dir().empty() ? " (disabled)" : " in ",
        rt.plan_cache_dir().c_str());

    if (!save_plan_path.empty()) {
      // The producer half of `solver_cli --load-plan`: the forward-solve
      // plan already built above, plus the backward-solve and numeric-
      // factorization plans a preconditioned solve will ask for.
      save_plan_file(*cold, save_plan_path);
      const auto upper = rt.plan_for(upper_solve_dependences(ilu.upper()));
      save_plan_file(*upper, save_plan_path + ".upper");
      const auto factor = rt.plan_for(ilu.row_dependences());
      save_plan_file(*factor, save_plan_path + ".factor");
      std::printf("plan bundle      : saved %s{,.upper,.factor}\n",
                  save_plan_path.c_str());
    }
    if (!load_plan_path.empty()) {
      const auto loaded = load_plan_file(load_plan_path);
      const PlanStats lst = loaded->stats();
      std::printf(
          "loaded plan      : %s — fingerprint %016llx, n=%d, %d phases, "
          "%d procs, %.1f KiB\n",
          load_plan_path.c_str(),
          static_cast<unsigned long long>(loaded->fingerprint()), lst.n,
          lst.phases, loaded->nproc(),
          static_cast<double>(lst.bytes) / 1024.0);
      if (loaded->fingerprint() != cold->fingerprint()) {
        std::fprintf(stderr,
                     "error: loaded plan fingerprint %016llx does not match "
                     "this matrix's forward-solve structure %016llx\n",
                     static_cast<unsigned long long>(loaded->fingerprint()),
                     static_cast<unsigned long long>(cold->fingerprint()));
        return 1;
      }
      std::printf("fingerprint check: loaded plan matches this matrix\n");
    }

    // The flat inspector artifact: what the executor walks on every run.
    const PlanStats st = cold->stats();
    std::printf(
        "plan artifact    : %d phases, wavefront width max/avg = %d / %.1f\n",
        st.phases, st.max_wavefront, st.avg_wavefront);
    std::printf(
        "plan footprint   : %.1f KiB flat CSR (%.1f B/row: dependence CSR + "
        "wavefront membership + schedule)\n",
        static_cast<double>(st.bytes) / 1024.0,
        st.n > 0 ? static_cast<double>(st.bytes) / static_cast<double>(st.n)
                 : 0.0);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
