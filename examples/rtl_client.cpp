// Solve-service client: drive an rtl_serve instance over its socket.
//
//   rtl_client --socket PATH [--workload NAME | --matrix FILE.mtx]
//              [--level K] [--rhs K] [--repeat R] [--metrics]
//
// Opens one session, registers a matrix (a named server-side workload by
// default, or an uploaded Matrix Market file), then runs R repeats of a
// pipelined burst of K single-RHS solve requests — the burst shape is
// what gives the server's aggregator something to coalesce. Prints
// client-observed burst latency percentiles, a FNV-1a checksum over every
// solution (bit-for-bit reproducible across runs and server restarts:
// solves are deterministic and the right-hand sides are fixed), and with
// --metrics the server's own metrics snapshot — including
// "inspector runs", the warm-start litmus value.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/plan_io.hpp"
#include "runtime/latency_histogram.hpp"
#include "runtime/timer.hpp"
#include "service/client.hpp"
#include "service/solve_service.hpp"
#include "sparse/matrix_market.hpp"

namespace {

using namespace rtl;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--workload NAME | --matrix F.mtx]\n"
               "          [--level K] [--rhs K] [--repeat R] [--metrics]\n"
               "NAME: spe1..spe5, 5pt, 9pt, 7pt, l5pt, l9pt, l7pt, or\n"
               "parametric 5pt:N / 9pt:N / 7pt:N\n",
               argv0);
  return 2;
}

/// Deterministic right-hand side j for an n-row system: a fixed seed
/// makes reruns byte-identical, distinct j keeps the batch columns
/// distinguishable (a column-swap bug changes the checksum).
std::vector<real_t> burst_rhs(index_t n, int j) {
  std::vector<real_t> rhs(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    rhs[static_cast<std::size_t>(i)] =
        1.0 + 0.001 * static_cast<real_t>((i * 31 + j * 17) % 101);
  }
  return rhs;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string workload = "5pt:24";
  std::string matrix_file;
  int level = 0;
  int rhs_count = 4;
  int repeats = 1;
  bool want_metrics = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--socket") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      socket_path = v;
    } else if (arg == "--workload") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      workload = v;
    } else if (arg == "--matrix") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      matrix_file = v;
    } else if (arg == "--level") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      level = std::atoi(v);
    } else if (arg == "--rhs") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      rhs_count = std::atoi(v);
    } else if (arg == "--repeat") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      repeats = std::atoi(v);
    } else if (arg == "--metrics") {
      want_metrics = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (socket_path.empty() || rhs_count < 1 || repeats < 1) {
    return usage(argv[0]);
  }

  try {
    ServiceClient client(socket_path);
    constexpr std::uint32_t kMatrixId = 1;
    index_t n = 0;
    WallTimer setup_timer;
    if (!matrix_file.empty()) {
      const CsrMatrix a = read_matrix_market_file(matrix_file);
      n = a.rows();
      client.upload_matrix(kMatrixId, a, level);
    } else {
      // Resolve locally only for the dimension; the server builds its own.
      n = service_workload(workload).a.rows();
      client.open_workload(kMatrixId, workload, level);
    }
    std::printf("rtl_client: registered %s (n=%lld, ilu level %d) in %.2f ms\n",
                matrix_file.empty() ? workload.c_str() : matrix_file.c_str(),
                static_cast<long long>(n), level, setup_timer.elapsed_ms());

    std::vector<std::vector<real_t>> burst(
        static_cast<std::size_t>(rhs_count));
    for (int j = 0; j < rhs_count; ++j) {
      burst[static_cast<std::size_t>(j)] = burst_rhs(n, j);
    }

    LatencyHistogram burst_latency;
    std::uint64_t checksum = 14695981039346656037ull;
    std::uint64_t solved = 0;
    std::uint64_t rejected = 0;
    for (int r = 0; r < repeats; ++r) {
      WallTimer timer;
      const auto outcomes = client.solve_pipelined(kMatrixId, burst);
      burst_latency.record(timer.elapsed_ms());
      for (const auto& outcome : outcomes) {
        if (outcome.ok) {
          ++solved;
          checksum = checksum * 1099511628211ull ^
                     fnv1a64(outcome.x.data(),
                             outcome.x.size() * sizeof(real_t));
        } else if (outcome.error == ServiceErrc::kRejected) {
          ++rejected;  // admission backpressure: expected under load
        } else {
          std::fprintf(stderr, "rtl_client: request %llu failed: %s\n",
                       static_cast<unsigned long long>(outcome.request_id),
                       outcome.error_message.c_str());
          return 1;
        }
      }
    }

    const LatencySnapshot lat = burst_latency.snapshot();
    std::printf("rtl_client: %llu solves in %d bursts of %d (%llu rejected)\n",
                static_cast<unsigned long long>(solved), repeats, rhs_count,
                static_cast<unsigned long long>(rejected));
    std::printf("rtl_client: burst latency p50 %.3f ms, p99 %.3f ms\n",
                lat.percentile_ms(50.0), lat.percentile_ms(99.0));
    std::printf("rtl_client: result checksum %016llx\n",
                static_cast<unsigned long long>(checksum));

    if (want_metrics) {
      const ServiceMetrics m = client.metrics();
      std::printf("rtl_client: server metrics\n");
      std::printf("  admitted       : %llu (%llu rejected)\n",
                  static_cast<unsigned long long>(m.admitted),
                  static_cast<unsigned long long>(m.rejected));
      std::printf("  batches        : %llu (%llu multi-request)\n",
                  static_cast<unsigned long long>(m.batches),
                  static_cast<unsigned long long>(m.multi_request_batches()));
      std::printf("  solve latency  : p50 %.3f ms, p99 %.3f ms\n",
                  m.solve_latency.percentile_ms(50.0),
                  m.solve_latency.percentile_ms(99.0));
      std::printf("  inspector runs : %llu\n",
                  static_cast<unsigned long long>(m.inspector_runs()));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rtl_client: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
