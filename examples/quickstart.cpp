// Quickstart: parallelize the paper's Figure 3 loop
//
//     do i = 1, n
//       x(i) = x(i) + b(i) * x(ia(i))
//     end do
//
// where the indirection array `ia` is only known at run time. The
// inspector derives the dependence DAG from `ia`, topologically sorts it
// into wavefronts, and the self-executing executor runs the loop in
// parallel while preserving every dependence.

#include <cstdio>
#include <vector>

#include "core/plan.hpp"
#include "runtime/thread_team.hpp"
#include "runtime/timer.hpp"

int main() {
  using namespace rtl;
  const index_t n = 1 << 20;

  // Run-time data: each iteration i reads x(ia(i)) with ia(i) < i.
  std::vector<index_t> ia(static_cast<std::size_t>(n), 0);
  std::vector<real_t> b(static_cast<std::size_t>(n)),
      x(static_cast<std::size_t>(n));
  std::uint64_t s = 12345;
  for (index_t i = 0; i < n; ++i) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    ia[static_cast<std::size_t>(i)] =
        i == 0 ? 0 : static_cast<index_t>((s >> 33) % i);
    b[static_cast<std::size_t>(i)] = 0.5;
    x[static_cast<std::size_t>(i)] = 1.0;
  }

  // 1. Describe the dependences (the inspector's input).
  std::vector<std::vector<index_t>> preds(static_cast<std::size_t>(n));
  for (index_t i = 1; i < n; ++i) {
    preds[static_cast<std::size_t>(i)].push_back(
        ia[static_cast<std::size_t>(i)]);
  }
  auto graph = DependenceGraph::from_lists(preds);

  ThreadTeam team(8);

  // 2. Inspector: wavefronts + schedule, paid once.
  WallTimer inspector_timer;
  DoconsiderOptions opts;
  opts.scheduling = SchedulingPolicy::kGlobal;
  opts.execution = ExecutionPolicy::kSelfExecuting;
  const Plan plan(team, std::move(graph), opts);
  const double inspector_ms = inspector_timer.elapsed_ms();

  // 3. Executor: run the loop body in the planned order (reusable).
  WallTimer executor_timer;
  plan.execute(team, [&](index_t i) {
    if (i > 0) {
      x[static_cast<std::size_t>(i)] +=
          b[static_cast<std::size_t>(i)] *
          x[static_cast<std::size_t>(ia[static_cast<std::size_t>(i)])];
    }
  });
  const double executor_ms = executor_timer.elapsed_ms();

  // 4. Verify against the sequential loop — the parallel run must preserve
  // every dependence, so the results have to match bit-for-bit.
  std::vector<real_t> ref(static_cast<std::size_t>(n), 1.0);
  for (index_t i = 1; i < n; ++i) {
    ref[static_cast<std::size_t>(i)] +=
        b[static_cast<std::size_t>(i)] *
        ref[static_cast<std::size_t>(ia[static_cast<std::size_t>(i)])];
  }
  if (x != ref) {
    std::fprintf(stderr, "FAIL: parallel result differs from sequential\n");
    return 1;
  }

  std::printf("doconsider quickstart: n = %d iterations\n", n);
  std::printf("  wavefronts      : %d\n", plan.wavefronts().num_waves);
  std::printf("  inspector time  : %.2f ms (paid once)\n", inspector_ms);
  std::printf("  executor time   : %.2f ms (per execution)\n", executor_ms);
  std::printf("  x[n-1]          : %.6f (matches sequential)\n",
              static_cast<double>(x[static_cast<std::size_t>(n - 1)]));
  return 0;
}
