// The paper's Figure 6 nested loop (`forconsider`):
//
//     doconsider i = 1, n
//       temp = f(i)
//       do j = 1, m
//         y(i) = y(i) + temp * y(g(i, j))
//       enddo
//     enddo
//
// Each iteration consumes several earlier iterations through the run-time
// indirection g(i, j). This example builds such a loop from the §4.1
// synthetic workload generator, gives iterations deliberately *irregular*
// work, and compares the three static executors against the dynamically
// self-scheduled extension (shared fetch-and-add cursor), which shines
// exactly when per-iteration work is skewed.

#include <cstdio>
#include <vector>

#include "core/plan.hpp"
#include "graph/wavefront.hpp"
#include "runtime/timer.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace rtl;

/// Skewed per-iteration work: iteration i spins proportional to
/// (i % 37)^2 — a few iterations are far heavier than the rest.
void burn(index_t i) {
  const int rounds = 200 + 40 * static_cast<int>((i % 37) * (i % 37));
  volatile double sink = 0.0;
  for (int r = 0; r < rounds; ++r) sink = sink + 1e-9 * r;
}

}  // namespace

int main() {
  const SyntheticSpec spec{.mesh = 65, .lambda = 4.0, .mean_dist = 3.0,
                           .seed = 99};
  const auto g = synthetic_dependences(spec);
  const auto wf = compute_wavefronts(g);
  const index_t n = g.size();
  std::printf("nested recurrence: n = %d, edges = %d, wavefronts = %d\n\n",
              n, g.num_edges(), wf.num_waves);

  ThreadTeam team(16);
  std::vector<real_t> y(static_cast<std::size_t>(n));
  const auto body = [&](index_t i) {
    burn(i);
    const real_t temp = 1.0 / (1.0 + static_cast<real_t>(i));  // "f(i)"
    real_t acc = 1.0;
    for (const index_t j : g.deps(i)) {  // "g(i, 1..m)"
      acc += temp * y[static_cast<std::size_t>(j)];
    }
    y[static_cast<std::size_t>(i)] = acc;
  };

  // Reference result.
  std::vector<real_t> ref;
  {
    for (index_t i = 0; i < n; ++i) body(i);
    ref = y;
  }

  const auto check = [&] {
    for (index_t i = 0; i < n; ++i) {
      if (y[static_cast<std::size_t>(i)] != ref[static_cast<std::size_t>(i)]) {
        return "MISMATCH";
      }
    }
    return "ok";
  };

  std::printf("%-28s %10s %8s\n", "executor", "time (ms)", "result");

  // Every executor shape — including the dynamically self-scheduled
  // extension, where threads claim sorted-list entries via fetch-and-add —
  // is one ExecutionPolicy away through the same plan.execute entry point.
  for (const auto exec :
       {ExecutionPolicy::kPreScheduled, ExecutionPolicy::kSelfExecuting,
        ExecutionPolicy::kDoAcross, ExecutionPolicy::kSelfScheduled}) {
    DoconsiderOptions opts;
    opts.execution = exec;
    DependenceGraph copy = g;
    const Plan plan(team, std::move(copy), opts);
    std::fill(y.begin(), y.end(), 0.0);
    WallTimer t;
    plan.execute(team, body);
    const double ms = t.elapsed_ms();
    const char* name = exec == ExecutionPolicy::kPreScheduled
                           ? "pre-scheduled (global)"
                           : exec == ExecutionPolicy::kSelfExecuting
                                 ? "self-executing (global)"
                                 : exec == ExecutionPolicy::kDoAcross
                                       ? "doacross"
                                       : "self-scheduled (dynamic)";
    std::printf("%-28s %10.2f %8s\n", name, ms, check());
  }
  return 0;
}
